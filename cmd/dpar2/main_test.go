package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadCSVMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(path, []byte("1, 2.5, -3\n4,5,6\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := readCSVMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 1) != 2.5 || m.At(1, 2) != 6 || m.At(0, 2) != -3 {
		t.Fatalf("values wrong: %v", m)
	}
}

func TestReadCSVMatrixErrors(t *testing.T) {
	dir := t.TempDir()
	ragged := filepath.Join(dir, "ragged.csv")
	os.WriteFile(ragged, []byte("1,2\n3,4,5\n"), 0o644)
	if _, err := readCSVMatrix(ragged); err == nil {
		t.Fatal("expected ragged-row error")
	}
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("1,x\n"), 0o644)
	if _, err := readCSVMatrix(bad); err == nil {
		t.Fatal("expected parse error")
	}
	empty := filepath.Join(dir, "empty.csv")
	os.WriteFile(empty, []byte("\n"), 0o644)
	if _, err := readCSVMatrix(empty); err == nil {
		t.Fatal("expected empty-file error")
	}
	if _, err := readCSVMatrix(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("expected not-found error")
	}
}

func TestLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "b.csv"), []byte("1,2\n3,4\n5,6\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("7,8\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("zzz"), 0o644)
	ten, err := loadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ten.K() != 2 || ten.J != 2 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
	// Sorted by name: a.csv first.
	if ten.Slices[0].Rows != 1 || ten.Slices[1].Rows != 3 {
		t.Fatalf("slice order wrong: %d, %d rows", ten.Slices[0].Rows, ten.Slices[1].Rows)
	}
	if _, err := loadCSVDir(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestLoadTensorGenerated(t *testing.T) {
	ten, err := loadTensor("", "random", 1, 12, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ten.K() != 3 || ten.J != 8 {
		t.Fatalf("random tensor K=%d J=%d", ten.K(), ten.J)
	}
	ten, err = loadTensor("", "lowrank", 1, 30, 15, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ten.K() != 4 || ten.J != 15 {
		t.Fatalf("lowrank tensor K=%d J=%d", ten.K(), ten.J)
	}
	if _, err := loadTensor("", "no-such-dataset", 1, 1, 1, 1, 0); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
}
