// Command dpar2 decomposes an irregular dense tensor with a chosen
// PARAFAC2 method and reports fitness and timing.
//
// The tensor is either generated (-data with one of the Table II stand-ins
// or "random"/"lowrank") or loaded from a directory of CSV slice files
// (-input dir, one file per slice, rows = I_k, comma-separated columns = J).
//
// Examples:
//
//	dpar2 -data "US Stock" -rank 10 -method dpar2
//	dpar2 -data random -I 200 -J 100 -K 50 -method als
//	dpar2 -input ./slices -rank 15 -method rdals -threads 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func main() {
	var (
		data        = flag.String("data", "lowrank", `generated dataset: one of the Table II names ("FMA", "US Stock", ...), "random", or "lowrank"`)
		input       = flag.String("input", "", "directory of CSV slice files (overrides -data)")
		method      = flag.String("method", "dpar2", "dpar2 | rdals | als | spartan")
		rank        = flag.Int("rank", 10, "target rank R")
		iters       = flag.Int("iters", 32, "max ALS iterations")
		tol         = flag.Float64("tol", 1e-6, "relative convergence tolerance")
		threads     = flag.Int("threads", 6, "worker threads")
		seed        = flag.Uint64("seed", 1, "random seed")
		dimI        = flag.Int("I", 200, "slice height for -data random/lowrank")
		dimJ        = flag.Int("J", 100, "columns for -data random/lowrank")
		dimK        = flag.Int("K", 50, "slices for -data random/lowrank")
		noise       = flag.Float64("noise", 0.05, "relative noise for -data lowrank")
		verbose     = flag.Bool("v", false, "print per-iteration convergence trace")
		saveFactors = flag.String("save-factors", "", "write the factor matrices to this file (binary DPF2 format)")
		saveTensor  = flag.String("save-tensor", "", "write the (generated/loaded) tensor to this file (binary DPT2 format)")
		loadBinary  = flag.String("load-tensor", "", "read a binary DPT2 tensor file (overrides -data and -input)")
		checkpoint  = flag.String("checkpoint", "", "stream the decomposition and write a resumable checkpoint to this file (binary DPC2 format)")
		resume      = flag.String("resume", "", "resume a streamed decomposition from this checkpoint and absorb the input tensor as the next batch")
		cacheDir    = flag.String("cache", "", "state directory: enables the content-addressed result cache (repeat runs with identical input and knobs are served from disk)")
	)
	flag.Parse()

	var ten *tensor.Irregular
	var err error
	if *loadBinary != "" {
		ten, err = dataio.LoadTensor(*loadBinary)
	} else {
		ten, err = loadTensor(*input, *data, *seed, *dimI, *dimJ, *dimK, *noise)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpar2:", err)
		os.Exit(1)
	}
	if *saveTensor != "" {
		if err := dataio.SaveTensor(*saveTensor, ten); err != nil {
			fmt.Fprintln(os.Stderr, "dpar2: save tensor:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tensor written to %s\n", *saveTensor)
	}

	// Ctrl-C cancels the decomposition between ALS iterations/phases.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One Engine (worker pool of width -threads, via the single <=0=serial
	// clamping rule) runs whichever registered method -method names; the
	// registry resolves the aliases this flag has always accepted. -cache
	// additionally gives the Engine a state directory with a bounded
	// content-addressed result cache.
	engOpts := []repro.EngineOption{repro.WithEngineThreads(*threads)}
	if *cacheDir != "" {
		engOpts = append(engOpts, repro.WithStateDir(*cacheDir), repro.WithResultCache(1<<30))
	}
	eng := repro.NewEngine(engOpts...)
	defer eng.Close()

	opts := []repro.Option{
		repro.WithMethod(repro.MethodID(*method)),
		repro.WithRank(*rank),
		repro.WithMaxIters(*iters),
		repro.WithTolerance(*tol),
		repro.WithSeed(*seed),
	}
	if *verbose {
		opts = append(opts, repro.WithConvergenceTrace())
	}
	var res *repro.Result
	if *checkpoint != "" || *resume != "" {
		res, err = runStreamed(ctx, eng, ten, opts, *resume, *checkpoint)
	} else {
		res, err = eng.Decompose(ctx, ten, opts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dpar2: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "dpar2:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		hits, misses := eng.CacheCounters()
		fmt.Fprintf(os.Stderr, "result cache  %d hit(s), %d miss(es)\n", hits, misses)
	}

	fmt.Printf("method        %s\n", *method)
	fmt.Printf("tensor        K=%d slices, J=%d columns, max I_k=%d, %d elements\n",
		ten.K(), ten.J, ten.MaxRows(), ten.NumElements())
	fmt.Printf("rank          %d\n", *rank)
	fmt.Printf("iterations    %d\n", res.Iters)
	fmt.Printf("fitness       %.6f (%s)\n", res.Fitness, res.FitnessKind)
	fmt.Printf("preprocess    %v\n", res.PreprocessTime)
	fmt.Printf("iteration     %v total", res.IterTime)
	if res.Iters > 0 {
		fmt.Printf(" (%v/iter)", res.IterTime/time.Duration(res.Iters))
	}
	fmt.Println()
	fmt.Printf("total         %v\n", res.TotalTime)
	fmt.Printf("footprint     input %.2f MB, iterated-on %.2f MB (%.1fx smaller)\n",
		float64(ten.SizeBytes())/(1<<20), float64(res.PreprocessedBytes)/(1<<20),
		float64(ten.SizeBytes())/float64(res.PreprocessedBytes))
	if *verbose {
		for i, e := range res.ConvergenceTrace {
			fmt.Printf("iter %3d  convergence measure %.6g\n", i+1, e)
		}
	}
	if *saveFactors != "" {
		if err := dataio.SaveResult(*saveFactors, res); err != nil {
			fmt.Fprintln(os.Stderr, "dpar2: save factors:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "factors written to %s\n", *saveFactors)
	}
}

// runStreamed runs the decomposition through the streaming DPar2 path so it
// can be checkpointed and resumed: -resume restores the saved stream and
// absorbs the input tensor as its next batch (rank/seed/iteration knobs come
// from the checkpoint, not the flags); otherwise a fresh stream starts on the
// input. -checkpoint then persists the stream atomically for a later -resume.
func runStreamed(ctx context.Context, eng *repro.Engine, ten *tensor.Irregular, opts []repro.Option, resume, checkpoint string) (*repro.Result, error) {
	var st *repro.StreamingDPar2
	var err error
	if resume != "" {
		st, err = eng.ResumeStream(ctx, resume)
		if err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
		if err := st.AbsorbCtx(ctx, ten.Slices); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "resumed from %s: stream now holds %d slices\n", resume, st.K())
	} else {
		st, err = eng.NewStream(ctx, ten, opts...)
		if err != nil {
			return nil, err
		}
	}
	if checkpoint != "" {
		if err := eng.SaveStream(checkpoint, st); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s\n", checkpoint)
	}
	return st.Result(), nil
}

// loadTensor resolves the input tensor: CSV directory, a named Table II
// stand-in, or a parameterized synthetic.
func loadTensor(inputDir, data string, seed uint64, i, j, k int, noise float64) (*tensor.Irregular, error) {
	if inputDir != "" {
		return loadCSVDir(inputDir)
	}
	g := rng.New(seed)
	switch strings.ToLower(data) {
	case "random":
		return datagen.RandomIrregular(g, i, j, k), nil
	case "lowrank":
		rows := make([]int, k)
		for idx := range rows {
			rows[idx] = i/2 + g.Intn(i/2+1)
		}
		return datagen.LowRank(g, rows, j, 10, noise), nil
	default:
		d, ok := experiments.Load(seed, experiments.ScaleBench, data)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (try one of the Table II names, random, lowrank)", data)
		}
		return d.Tensor, nil
	}
}

// loadCSVDir reads every *.csv in dir (sorted by name) as one slice.
func loadCSVDir(dir string) (*tensor.Irregular, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .csv files in %s", dir)
	}
	sort.Strings(names)
	slices := make([]*mat.Dense, 0, len(names))
	for _, n := range names {
		m, err := readCSVMatrix(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		slices = append(slices, m)
	}
	return tensor.NewIrregular(slices)
}

func readCSVMatrix(path string) (*mat.Dense, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var rows [][]float64
	for ln, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for fi, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d field %d: %w", ln+1, fi+1, err)
			}
			row[fi] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("ragged row at line %d", ln+1)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty file")
	}
	m := mat.New(len(rows), len(rows[0]))
	for ri, row := range rows {
		copy(m.Row(ri), row)
	}
	return m, nil
}
