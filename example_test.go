package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// ExampleEngine_Decompose is the canonical entry point: one Engine, any
// registered method, cancellable through the context.
func ExampleEngine_Decompose() {
	eng := repro.NewEngine(repro.WithEngineThreads(1))
	defer eng.Close()

	g := repro.NewRNG(1)
	ten := repro.LowRankTensor(g, []int{40, 60, 50}, 20, 3, 0)

	res, err := eng.Decompose(context.Background(), ten,
		repro.WithMethod(repro.MethodDPar2), // the default
		repro.WithRank(3), repro.WithMaxIters(200), repro.WithTolerance(1e-12))
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitness > 0.99: %v\n", res.Fitness > 0.99)
	fmt.Printf("V shape: %dx%d\n", res.V.Rows, res.V.Cols)
	// Output:
	// fitness > 0.99: true
	// V shape: 20x3
}

// ExampleEngine_Submit runs a batch of decompositions through the bounded
// job queue on one shared pool — the multi-tenant serving path.
func ExampleEngine_Submit() {
	eng := repro.NewEngine(repro.WithEngineThreads(2))
	defer eng.Close()
	ctx := context.Background()

	pending := make([]<-chan repro.JobResult, 3)
	for i := range pending {
		g := repro.NewRNG(uint64(i))
		pending[i] = eng.Submit(ctx, repro.Job{
			Tensor: repro.LowRankTensor(g, []int{30, 40, 35}, 15, 3, 0),
			Tag:    fmt.Sprintf("job-%d", i),
			Options: []repro.Option{
				repro.WithRank(3), repro.WithMaxIters(100), repro.WithSeed(uint64(i)),
			},
		})
	}
	for _, ch := range pending {
		jr := <-ch
		if jr.Err != nil {
			panic(jr.Err)
		}
		fmt.Printf("%s fit>0.9: %v\n", jr.Tag, jr.Result.Fitness > 0.9)
	}
	// Output:
	// job-0 fit>0.9: true
	// job-1 fit>0.9: true
	// job-2 fit>0.9: true
}

// ExampleDPar2 decomposes a small irregular tensor and reports the fitness.
func ExampleDPar2() {
	g := repro.NewRNG(1)
	// Exact rank-3 PARAFAC2 structure: fitness must reach ~1.
	ten := repro.LowRankTensor(g, []int{40, 60, 50}, 20, 3, 0)

	cfg := repro.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 200
	cfg.Tol = 1e-12
	cfg.Threads = 1

	res, err := repro.DPar2(ten, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitness > 0.99: %v\n", res.Fitness > 0.99)
	fmt.Printf("V shape: %dx%d\n", res.V.Rows, res.V.Cols)
	// Output:
	// fitness > 0.99: true
	// V shape: 20x3
}

// ExampleCompress shows amortizing the two-stage compression across runs.
func ExampleCompress() {
	g := repro.NewRNG(2)
	ten := repro.LowRankTensor(g, []int{50, 70}, 25, 4, 0.01)

	cfg := repro.DefaultConfig()
	cfg.Rank = 4
	cfg.Threads = 1

	comp := repro.Compress(ten, cfg)
	fmt.Printf("compressed smaller than input: %v\n", comp.SizeBytes() < ten.SizeBytes())

	res, err := repro.DPar2FromCompressed(comp, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitness > 0.95: %v\n", repro.Fitness(ten, res) > 0.95)
	// Output:
	// compressed smaller than input: true
	// fitness > 0.95: true
}

// ExampleDetectAnomalies flags a corrupted slice by its residual.
func ExampleDetectAnomalies() {
	g := repro.NewRNG(3)
	ten := repro.LowRankTensor(g, []int{40, 40, 40, 40, 40, 40}, 16, 2, 0.01)
	// Replace slice 4 with pure noise.
	g.NormSlice(ten.Slices[4].Data)

	cfg := repro.DefaultConfig()
	cfg.Rank = 2
	cfg.Threads = 1
	res, err := repro.DPar2(ten, cfg)
	if err != nil {
		panic(err)
	}
	for _, a := range repro.DetectAnomalies(ten, res, 3.5) {
		fmt.Printf("anomalous slice: %d\n", a.Slice)
	}
	// Output:
	// anomalous slice: 4
}

// ExampleKNN finds the nearest neighbors under a similarity matrix.
func ExampleKNN() {
	sim := repro.NewMatrixFromData(3, 3, []float64{
		1.0, 0.9, 0.1,
		0.9, 1.0, 0.2,
		0.1, 0.2, 1.0,
	})
	for _, n := range repro.KNN(sim, 0, 2) {
		fmt.Printf("neighbor %d score %.1f\n", n.Index, n.Score)
	}
	// Output:
	// neighbor 1 score 0.9
	// neighbor 2 score 0.1
}
