package repro

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// evaluation section, plus ablations for the design choices DESIGN.md calls
// out. Run with
//
//	go test -bench=. -benchmem
//
// The full experiment harness (larger datasets, formatted tables) lives in
// cmd/experiments; these benches are the regenerable, per-figure entry
// points with stable workloads.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

func benchConfig(rank int) parafac2.Config {
	cfg := parafac2.DefaultConfig()
	cfg.Rank = rank
	cfg.MaxIters = 10
	cfg.Threads = 2
	return cfg
}

// benchTensor is a mid-size irregular tensor in the stock-data regime.
func benchTensor(seed uint64) *tensor.Irregular {
	g := rng.New(seed)
	rows := datagen.LongTailRows(g, 40, 100, 600)
	return datagen.LowRank(g, rows, 88, 10, 0.05)
}

// --- Headline: end-to-end DPar2 at the default bench shape -----------------

// BenchmarkDPar2 is the canonical end-to-end wall-time benchmark used by the
// perf trajectory snapshots (BENCH_*.json): full DPar2 (two-stage compression
// plus ALS iterations) on the mid-size stock-regime tensor. Run with
// -benchmem to track the allocation budget.
func BenchmarkDPar2(b *testing.B) {
	ten := benchTensor(1)
	cfg := benchConfig(10)
	cfg.Tol = 0 // run all iterations for a stable workload
	b.ReportAllocs()
	b.ResetTimer()
	var fit float64
	for i := 0; i < b.N; i++ {
		res, err := parafac2.DPar2(ten, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fit = res.Fitness
	}
	b.ReportMetric(fit, "fitness")
}

// BenchmarkDPar2IterationAllocs isolates the ALS iteration phase on a fixed
// compressed tensor so allocs/op ÷ iterations gives allocations per ALS
// iteration (the budget the workspace arena is accountable for).
func BenchmarkDPar2IterationAllocs(b *testing.B) {
	ten := benchTensor(1)
	cfg := benchConfig(10)
	cfg.Tol = 0
	comp := parafac2.Compress(ten, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := parafac2.DPar2FromCompressed(comp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iters
	}
	b.ReportMetric(float64(iters), "als-iters")
}

// BenchmarkDPar2TallSlice guards the sharded stage-1 path: the tallest slice
// is 8x the ShardRows threshold, so compression (run once in setup) goes
// through shard sketches plus the hierarchical merge, and the loop isolates
// the ALS iterations on the resulting compressed tensor. allocs/op ÷
// als-iters must stay on the same budget as BenchmarkDPar2IterationAllocs —
// sharding must not leak allocations into the steady-state iteration.
func BenchmarkDPar2TallSlice(b *testing.B) {
	g := rng.New(21)
	rows := []int{8 * 2048, 700, 900, 500}
	ten := datagen.LowRank(g, rows, 64, 10, 0.05)
	cfg := benchConfig(10)
	cfg.Tol = 0
	cfg.ShardRows = 2048 // tallest slice = 8 shards through the merge path
	comp := parafac2.Compress(ten, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := parafac2.DPar2FromCompressed(comp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iters
	}
	b.ReportMetric(float64(iters), "als-iters")
}

// BenchmarkAbsorb guards the streaming absorb path: with Q in lazy factored
// form, one Absorb pays only the new slices' sketches, the R-sized stage-2
// update, the O(K·R²) in-place basis rotation, and RefreshIters
// compressed-space iterations — so per-batch time and allocations must stay
// (nearly) flat as the absorbed history K grows. The K=8 and K=64 variants
// absorb the identical batch; each iteration forks the bootstrapped stream
// (outside the timer) so every absorb replays at a fixed K with identical
// RNG state. benchsmoke.sh budgets allocs/op on both.
func BenchmarkAbsorb(b *testing.B) {
	const batchSlices = 4
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			g := rng.New(40)
			rows := make([]int, k)
			for i := range rows {
				rows[i] = 300 + 40*(i%6)
			}
			base := datagen.LowRank(g, rows, 40, 8, 0.02)
			batch := datagen.LowRank(g, []int{2400, 2800, 2200, 2600}[:batchSlices], 40, 8, 0.02).Slices
			cfg := benchConfig(8)
			cfg.Tol = 0
			st, err := parafac2.NewStreamingDPar2(base, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fork := st.Clone()
				b.StartTimer()
				if err := fork.Absorb(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batchSlices), "batch-slices")
		})
	}
}

// BenchmarkEngineContendedQueue guards the admission scheduler on a
// saturated single-worker queue with two priority classes. Each iteration
// replays the same contention scenario: a gate job occupies the only worker
// while a low-priority backlog and then a burst of high-priority jobs are
// queued, so the scheduler must pop every "hi" job before any queued "lo"
// job. The per-class mean queue waits are reported as hi-qwait-ms /
// lo-qwait-ms; scripts/benchsmoke.sh budgets hi-qwait-ms and fails on
// priority inversion (hi-qwait-ms > lo-qwait-ms) or on a missing metric —
// a renamed benchmark or an empty result is a hard failure, not a vacuous
// pass.
func BenchmarkEngineContendedQueue(b *testing.B) {
	const perClass = 8
	g := rng.New(30)
	ten := datagen.LowRank(g, []int{40, 50, 45}, 20, 3, 0.02)
	base := parafac2.DefaultConfig()
	base.Rank = 3
	base.MaxIters = 3
	base.Tol = 0
	stats := &admission.Stats{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithEngineThreads(1), WithBaseConfig(base),
			WithJobConcurrency(1), WithQueueDepth(4*perClass),
			WithEngineMetrics(stats))
		running := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		gate := eng.Submit(context.Background(), Job{
			Tensor: ten, Tag: "gate", Tenant: "gate",
			Options: []Option{WithProgress(func(int, float64) bool {
				once.Do(func() { close(running) })
				<-release
				return true
			})},
		})
		<-running
		pending := make([]<-chan JobResult, 0, 2*perClass)
		for j := 0; j < perClass; j++ {
			pending = append(pending, eng.Submit(context.Background(), Job{
				Tensor: ten, Tenant: "lo", Priority: 0,
				Options: []Option{WithSeed(uint64(j))},
			}))
		}
		for j := 0; j < perClass; j++ {
			pending = append(pending, eng.Submit(context.Background(), Job{
				Tensor: ten, Tenant: "hi", Priority: 10,
				Options: []Option{WithSeed(uint64(j))},
			}))
		}
		close(release)
		if jr := <-gate; jr.Err != nil {
			b.Fatal(jr.Err)
		}
		for _, ch := range pending {
			if jr := <-ch; jr.Err != nil {
				b.Fatal(jr.Err)
			}
		}
		eng.Close()
	}
	b.StopTimer()
	hi, lo := stats.Tenant("hi"), stats.Tenant("lo")
	b.ReportMetric(float64(hi.MeanQueueWait().Microseconds())/1e3, "hi-qwait-ms")
	b.ReportMetric(float64(lo.MeanQueueWait().Microseconds())/1e3, "lo-qwait-ms")
}

// BenchmarkCacheHit guards the content-addressed result cache's hot path: a
// repeated Decompose on an Engine with WithResultCache is served from disk —
// key derivation (one sha256 pass over the serialized tensor), one cached-file
// read, checksum verification, and result decode, but never the method.
// scripts/benchsmoke.sh budgets both allocs/op and latency; the counter check
// below makes a silently-bypassed cache a hard failure rather than a bench of
// the wrong path.
func BenchmarkCacheHit(b *testing.B) {
	g := rng.New(50)
	ten := datagen.LowRank(g, []int{120, 140, 100, 130}, 60, 8, 0.02)
	base := benchConfig(8)
	base.MaxIters = 6
	base.Tol = 0
	eng := NewEngine(WithBaseConfig(base), WithStateDir(b.TempDir()), WithResultCache(1<<28))
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.Decompose(ctx, ten); err != nil { // warm: the one miss
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Decompose(ctx, ten); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := eng.CacheCounters()
	if misses != 1 || hits < uint64(b.N) {
		b.Fatalf("cache did not serve the loop: %d hits, %d misses", hits, misses)
	}
}

// --- Fig. 1: total running time per method (trade-off) -------------------

func BenchmarkFig1TradeOff(b *testing.B) {
	ten := benchTensor(1)
	for _, m := range experiments.Methods() {
		for _, rank := range []int{10, 15, 20} {
			b.Run(fmt.Sprintf("%s/rank%d", m.Name, rank), func(b *testing.B) {
				cfg := benchConfig(rank)
				var fit float64
				for i := 0; i < b.N; i++ {
					res, err := m.Run(context.Background(), ten, cfg)
					if err != nil {
						b.Fatal(err)
					}
					fit = res.Fitness
				}
				b.ReportMetric(fit, "fitness")
			})
		}
	}
}

// --- Fig. 9(a): preprocessing phase only ----------------------------------

func BenchmarkFig9Preprocess(b *testing.B) {
	ten := benchTensor(2)
	b.Run("DPar2/two-stage-rsvd", func(b *testing.B) {
		cfg := benchConfig(10)
		for i := 0; i < b.N; i++ {
			_ = parafac2.Compress(ten, cfg)
		}
	})
	b.Run("RD-ALS/deterministic-svd", func(b *testing.B) {
		// RD-ALS's preprocessing: truncated deterministic SVD of the
		// J×ΣI_k concatenation.
		concat := make([]*mat.Dense, ten.K())
		for k, s := range ten.Slices {
			concat[k] = s.T()
		}
		wide := mat.HConcat(concat...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = lapack.Truncated(wide, 10)
		}
	})
}

// --- Fig. 9(b): single-iteration cost -------------------------------------

func BenchmarkFig9IterationTime(b *testing.B) {
	ten := benchTensor(3)
	for _, m := range experiments.Methods() {
		b.Run(m.Name, func(b *testing.B) {
			cfg := benchConfig(10)
			cfg.MaxIters = 8
			cfg.Tol = 0 // run all iterations: we report per-iteration time
			var perIter float64
			for i := 0; i < b.N; i++ {
				res, err := m.Run(context.Background(), ten, cfg)
				if err != nil {
					b.Fatal(err)
				}
				perIter = res.IterTime.Seconds() / float64(res.Iters) * 1e3
			}
			b.ReportMetric(perIter, "ms/als-iter")
		})
	}
}

// --- Fig. 10: compression ratio --------------------------------------------

func BenchmarkFig10CompressionRatio(b *testing.B) {
	// Spectrogram regime (large J): where the paper sees up to 201x.
	g := rng.New(4)
	ten := datagen.SpectrogramTensor(g, 16, 60, 160, 256)
	cfg := benchConfig(10)
	var ratio float64
	for i := 0; i < b.N; i++ {
		comp := parafac2.Compress(ten, cfg)
		ratio = float64(ten.SizeBytes()) / float64(comp.SizeBytes())
	}
	b.ReportMetric(ratio, "input/compressed")
}

// --- Fig. 11(a): tensor-size scalability -----------------------------------

func BenchmarkFig11TensorSize(b *testing.B) {
	for _, s := range [][3]int{{50, 50, 25}, {100, 50, 25}, {100, 100, 25}, {100, 100, 50}} {
		g := rng.New(5)
		ten := datagen.RandomIrregular(g, s[0], s[1], s[2])
		for _, m := range experiments.Methods() {
			b.Run(fmt.Sprintf("%dx%dx%d/%s", s[0], s[1], s[2], m.Name), func(b *testing.B) {
				cfg := benchConfig(10)
				for i := 0; i < b.N; i++ {
					if _, err := m.Run(context.Background(), ten, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 11(b): rank scalability -------------------------------------------

func BenchmarkFig11Rank(b *testing.B) {
	g := rng.New(6)
	ten := datagen.RandomIrregular(g, 100, 100, 40)
	for _, rank := range []int{10, 20, 30, 40, 50} {
		for _, m := range experiments.Methods() {
			b.Run(fmt.Sprintf("rank%d/%s", rank, m.Name), func(b *testing.B) {
				cfg := benchConfig(rank)
				for i := 0; i < b.N; i++ {
					if _, err := m.Run(context.Background(), ten, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 11(c): multi-core scalability -------------------------------------

func BenchmarkFig11Threads(b *testing.B) {
	ten := benchTensor(7)
	for _, th := range []int{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("threads%d", th), func(b *testing.B) {
			cfg := benchConfig(10)
			cfg.Threads = th
			for i := 0; i < b.N; i++ {
				if _, err := parafac2.DPar2(ten, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 12 / Table III: discovery pipeline --------------------------------

func BenchmarkFig12Correlations(b *testing.B) {
	g := rng.New(8)
	ten, sec := datagen.StockTensor(g, 24, 80, 300, datagen.DefaultUSMarket())
	d := experiments.Dataset{Name: "US Stock", Tensor: ten, Sectors: sec}
	cfg := benchConfig(10)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig12(context.Background(), d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIISimilarStocks(b *testing.B) {
	g := rng.New(9)
	ten, sec := datagen.StockTensor(g, 24, 80, 300, datagen.DefaultUSMarket())
	d := experiments.Dataset{Name: "US Stock", Tensor: ten, Sectors: sec}
	cfg := benchConfig(10)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(context.Background(), d, cfg, 0, 10, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: dataset generation cost --------------------------------------

func BenchmarkTableIIGenerators(b *testing.B) {
	b.Run("stock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datagen.StockTensor(rng.New(uint64(i)), 12, 80, 300, datagen.DefaultUSMarket())
		}
	})
	b.Run("spectrogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datagen.SpectrogramTensor(rng.New(uint64(i)), 8, 60, 120, 256)
		}
	})
	b.Run("traffic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datagen.TrafficTensor(rng.New(uint64(i)), 16, 100, 96)
		}
	})
}

// --- Ablations (DESIGN.md §4) ------------------------------------------------

// AblationStage2: two-stage compression vs stopping after stage 1. The
// second stage is what shrinks the per-iteration working set from J×KR to
// R-sized blocks; skipping it leaves BkCkᵀ (J×R per slice) in the loop.
func BenchmarkAblationStage2(b *testing.B) {
	ten := benchTensor(10)
	cfg := benchConfig(10)
	b.Run("two-stage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp := parafac2.Compress(ten, cfg)
			if _, err := parafac2.DPar2FromCompressed(comp, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stage1-only-als-on-compressed", func(b *testing.B) {
		// Stage-1-only strategy: replace each slice by its rank-R
		// approximation and run plain ALS on the (still J-wide) result.
		g := rng.New(11)
		opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}
		slices := make([]*mat.Dense, ten.K())
		for k, s := range ten.Slices {
			d := rsvd.Decompose(g, s, cfg.Rank, opts)
			slices[k] = d.Reconstruct()
		}
		approx := tensor.MustIrregular(slices)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := parafac2.ALS(approx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// AblationLemmaReorder: Lemmas 1-3 vs materializing Y and running the naive
// MTTKRP (what a straightforward implementation would do).
func BenchmarkAblationLemmaReorder(b *testing.B) {
	g := rng.New(12)
	r, j, k := 10, 512, 300
	d := lapack.QRFactor(mat.Gaussian(g, j, r)).Q
	e := make([]float64, r)
	for i := range e {
		e[i] = 1 + g.Float64()
	}
	tf := make([]*mat.Dense, k)
	for kk := range tf {
		tf[kk] = mat.Gaussian(g, r, r)
	}
	w := mat.Gaussian(g, k, r)
	v := mat.Gaussian(g, j, r)
	h := mat.Gaussian(g, r, r)

	b.Run("lemma-reordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtv := d.TMul(v)
			parafac2.LemmaG1(tf, w, e, dtv, 2)
			parafac2.LemmaG2(tf, w, d, e, h, 2)
			parafac2.LemmaG3(tf, e, dtv, h, 2)
		}
	})
	b.Run("naive-materialized-Y", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ySlices := make([]*mat.Dense, k)
			for kk := range ySlices {
				ySlices[kk] = tf[kk].ScaleColumns(e).MulT(d)
			}
			y := tensor.MustDense3(ySlices)
			y.MTTKRP(1, w, v)
			y.MTTKRP(2, w, h)
			y.MTTKRP(3, v, h)
		}
	})
}

// AblationConvergence: compressed convergence check (Gram trick) vs the
// paper's direct R×J computation vs full reconstruction error.
func BenchmarkAblationConvergence(b *testing.B) {
	ten := benchTensor(13)
	cfg := benchConfig(10)
	comp := parafac2.Compress(ten, cfg)
	res, err := parafac2.DPar2FromCompressed(comp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tf := make([]*mat.Dense, ten.K())
	for k := range tf {
		tf[k] = res.Qk(k).TMul(comp.A[k]).Mul(comp.F[k])
	}
	b.Run("gram-trick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtv := comp.D.TMul(res.V)
			parafac2.CompressedErrorGram2(tf, comp.E, dtv, res.V, res.H, res.S)
		}
	})
	b.Run("direct-RxJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parafac2.CompressedErrorDirect2(comp, tf, res.V, res.H, res.S)
		}
	})
	b.Run("full-reconstruction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for k, xk := range ten.Slices {
				d := xk.FrobDist(res.ReconstructSlice(k))
				sum += d * d
			}
			_ = sum
		}
	})
}

// AblationPartition: greedy (Alg. 4) vs round-robin slice allocation under
// the long-tailed slice-height distribution of Fig. 8.
func BenchmarkAblationPartition(b *testing.B) {
	g := rng.New(14)
	sizes := datagen.LongTailRows(g, 4000, 50, 5000)
	b.Run("greedy", func(b *testing.B) {
		var imb float64
		for i := 0; i < b.N; i++ {
			imb = schedImbalanceGreedy(sizes, 6)
		}
		b.ReportMetric(imb, "max/ideal-load")
	})
	b.Run("round-robin", func(b *testing.B) {
		var imb float64
		for i := 0; i < b.N; i++ {
			imb = schedImbalanceRR(sizes, 6)
		}
		b.ReportMetric(imb, "max/ideal-load")
	})
}

func schedImbalanceGreedy(sizes []int, t int) float64 {
	return scheduler.Imbalance(sizes, scheduler.Partition(sizes, t))
}

func schedImbalanceRR(sizes []int, t int) float64 {
	return scheduler.Imbalance(sizes, scheduler.RoundRobin(len(sizes), t))
}

// AblationPowerIter: randomized-SVD power iterations q ∈ {0,1,2} — the
// fitness/time trade-off of the sketch.
func BenchmarkAblationPowerIter(b *testing.B) {
	ten := benchTensor(15)
	for _, q := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("q%d", q), func(b *testing.B) {
			cfg := benchConfig(10)
			cfg.PowerIters = q
			var fit float64
			for i := 0; i < b.N; i++ {
				res, err := parafac2.DPar2(ten, cfg)
				if err != nil {
					b.Fatal(err)
				}
				fit = res.Fitness
			}
			b.ReportMetric(fit, "fitness")
		})
	}
}

// --- kernel-level microbenches ------------------------------------------------

// BenchmarkKernelMatMul covers the square fill-in sizes plus the two shapes
// the register-blocked kernels are sized for: the R×R ALS hot-loop product
// and the tall-skinny stage-1 projection (I_k × J times J × (R+s)).
func BenchmarkKernelMatMul(b *testing.B) {
	g := rng.New(16)
	for _, sh := range [][3]int{{64, 64, 64}, {256, 256, 256}, {10, 10, 10}, {600, 88, 18}} {
		a := mat.Gaussian(g, sh[0], sh[1])
		c := mat.Gaussian(g, sh[1], sh[2])
		b.Run(fmt.Sprintf("%dx%dx%d", sh[0], sh[1], sh[2]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Mul(c)
			}
		})
	}
}

// BenchmarkFactorBatch guards the fused batched small-SVD sweep at the ALS
// hot-loop shape: K problems of size R×R (R = 10) through one warmed
// BatchWorkspace. scripts/benchsmoke.sh budgets allocs/op on both K variants
// — steady-state batch factorization must stay allocation-free, so any
// reintroduced per-problem allocation trips the guard at K=8 already and
// scales visibly at K=64.
func BenchmarkFactorBatch(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			g := rng.New(60)
			as := make([]*mat.Dense, k)
			us := make([]*mat.Dense, k)
			ss := make([][]float64, k)
			vs := make([]*mat.Dense, k)
			for p := 0; p < k; p++ {
				as[p] = mat.Gaussian(g, 10, 10)
				us[p] = mat.New(10, 10)
				ss[p] = make([]float64, 10)
				vs[p] = mat.New(10, 10)
			}
			var ws lapack.BatchWorkspace
			lapack.FactorBatch(as, us, ss, vs, nil, &ws) // warm the slab
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lapack.FactorBatch(as, us, ss, vs, nil, &ws)
			}
		})
	}
}

func BenchmarkKernelRandomizedSVD(b *testing.B) {
	g := rng.New(17)
	a := mat.Gaussian(g, 2000, 100)
	b.Run("rsvd-rank10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rsvd.Decompose(g, a, 10, rsvd.DefaultOptions())
		}
	})
	b.Run("deterministic-rank10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lapack.Truncated(a, 10)
		}
	})
}
