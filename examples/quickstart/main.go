// Quickstart: decompose an irregular dense tensor with DPar2 and compare it
// against classical PARAFAC2-ALS on the same data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.NewRNG(7)

	// An irregular tensor: 40 slices sharing 60 columns, with heights
	// between 100 and 400 (think: stocks with different listing periods).
	rows := make([]int, 40)
	for i := range rows {
		rows[i] = 100 + 10*i%301
	}
	ten := repro.LowRankTensor(g, rows, 60, 10, 0.02)
	fmt.Printf("tensor: K=%d slices, J=%d, heights %d..%d, %.1f MB dense\n",
		ten.K(), ten.J, minInt(rows), maxInt(rows), float64(ten.SizeBytes())/(1<<20))

	// One Engine runs every method on one shared worker pool; each call is
	// cancellable through its context.
	eng := repro.NewEngine() // pool width = DefaultConfig().Threads (6)
	defer eng.Close()
	ctx := context.Background()

	dp, err := eng.Decompose(ctx, ten, repro.WithSeed(42)) // MethodDPar2 is the default
	if err != nil {
		log.Fatal(err)
	}
	als, err := eng.Decompose(ctx, ten, repro.WithMethod(repro.MethodALS), repro.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %10s %10s %8s %12s\n", "method", "fitness", "total", "iters", "iterated-on")
	for _, r := range []struct {
		name string
		res  *repro.Result
	}{{"DPar2", dp}, {"PARAFAC2-ALS", als}} {
		fmt.Printf("%-14s %10.4f %10v %8d %10.2fMB\n",
			r.name, r.res.Fitness, r.res.TotalTime.Round(1e6), r.res.Iters,
			float64(r.res.PreprocessedBytes)/(1<<20))
	}

	// The factors: V is shared across slices, U_k = Q_k H is per-slice.
	fmt.Printf("\nshared factor V: %dx%d;  U_3: %dx%d;  S_3 diagonal: %v...\n",
		dp.V.Rows, dp.V.Cols, dp.Uk(3).Rows, dp.Uk(3).Cols, trunc(dp.S[3], 3))
}

func minInt(xs []int) int {
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func trunc(xs []float64, n int) []float64 {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
