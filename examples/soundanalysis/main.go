// Sound analysis: decompose a collection of log-power spectrograms (the
// FMA/Urban regime of the paper: large frequency dimension, strongly
// compressible slices) and inspect what the compression buys.
//
//	go run ./examples/soundanalysis
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	g := repro.NewRNG(5)

	// 30 "songs": time × 256 frequency bins, 80-240 frames each.
	ten := repro.NewSpectrogramTensor(g, 30, 80, 240, 256)
	fmt.Printf("spectrogram tensor: K=%d songs, J=%d bins, %.1f MB dense\n",
		ten.K(), ten.J, float64(ten.SizeBytes())/(1<<20))

	eng := repro.NewEngine()
	defer eng.Close()
	ctx := context.Background()
	const rank = 10

	// Compress once, reuse for any number of iteration runs (e.g.
	// hyperparameter exploration) on the same Engine pool.
	comp, err := eng.Compress(ctx, ten, repro.WithRank(rank))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage compression: %.2f MB (%.0fx smaller than input)\n",
		float64(comp.SizeBytes())/(1<<20),
		float64(ten.SizeBytes())/float64(comp.SizeBytes()))

	res, err := eng.DecomposeCompressed(ctx, comp, repro.WithRank(rank))
	if err != nil {
		log.Fatal(err)
	}
	fit := eng.Fitness(ten, res)
	fmt.Printf("DPar2: fitness %.4f, %d iterations, iteration phase %v\n\n",
		fit, res.Iters, res.IterTime.Round(1e6))

	// The rows of V are per-frequency latent loadings: dominant bins per
	// component show which spectral bands each component captures.
	fmt.Println("dominant frequency bins per component (|V| column peaks):")
	for r := 0; r < rank; r++ {
		col := res.V.Col(r)
		best, bestAbs := 0, 0.0
		for b, v := range col {
			if a := abs(v); a > bestAbs {
				best, bestAbs = b, a
			}
		}
		bar := strings.Repeat("#", int(40*float64(best)/256))
		fmt.Printf("  component %2d: bin %3d %s\n", r, best, bar)
	}

	// Reconstruction check on one slice.
	k := 3
	rec := res.ReconstructSlice(k)
	orig := ten.Slices[k]
	rel := rec.FrobDist(orig) / orig.FrobNorm()
	fmt.Printf("\nslice %d reconstruction relative error: %.3f\n", k, rel)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
