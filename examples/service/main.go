// Decomposition as a service: run the HTTP front end in-process, then use
// the typed client to upload a tensor, decompose it synchronously, poll an
// async job, and drive a durable streaming session — the same API the
// dpar2d daemon serves over a real socket (see docs/SERVICE.md).
//
//	go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"time"
)

import (
	"repro"
	"repro/internal/service"
)

func main() {
	ctx := context.Background()

	// One Engine serves everything: a shared pool, an admission-controlled
	// queue with a per-tenant quota, and traffic statistics.
	stats := &repro.EngineStats{}
	eng := repro.NewEngine(
		repro.WithEngineThreads(4),
		repro.WithTenantQuota(2, 1),
		repro.WithEngineMetrics(stats),
	)
	defer eng.Close()

	srv, err := service.New(service.Config{Engine: eng, Stats: stats})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := service.NewClient(hs.URL, nil)

	// Upload: tensors travel as the hardened binary DPT2 format and are
	// content-addressed — re-uploading the same data is a no-op.
	g := repro.NewRNG(7)
	ten := repro.LowRankTensor(g, []int{80, 90, 70, 100, 60}, 50, 8, 0.02)
	info, err := client.UploadTensor(ctx, ten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %s: K=%d J=%d (%d elements)\n",
		info.TensorID, info.K, info.J, info.Elements)

	// Synchronous decomposition. Only the knobs that differ from the
	// server's defaults travel; the reply echoes the fully resolved Spec.
	rank, seed := 8, uint64(42)
	res, resp, err := client.Decompose(ctx, service.DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     service.SpecRequest{Rank: &rank, Seed: &seed},
		Tenant:   "analytics",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync decompose: fitness %.4f in %d iters (spec %+v)\n",
		res.Fitness, res.Iters, resp.Spec)

	// Async job: submit, poll, fetch. A decomposition identical to the one
	// above is served from the Engine's result path deterministically —
	// same tensor, same Spec, same bits.
	job, err := client.SubmitJob(ctx, service.DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     service.SpecRequest{Rank: &rank, Seed: &seed},
		Tenant:   "analytics",
	})
	if err != nil {
		log.Fatal(err)
	}
	for job.Status == service.JobPending {
		time.Sleep(20 * time.Millisecond)
		if job, err = client.JobStatus(ctx, job.JobID); err != nil {
			log.Fatal(err)
		}
	}
	jobRes, err := client.JobResult(ctx, job.JobID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async job %s: %s, fitness %.4f (matches sync: %v)\n",
		job.JobID, job.Status, jobRes.Fitness, jobRes.Fitness == res.Fitness)

	// Streaming session: the initial window is decomposed on create; later
	// absorbs warm-start from the current factors. On a daemon with -state
	// the session would also survive a restart (docs/SERVICE.md).
	stream, err := client.CreateStream(ctx, service.StreamCreateRequest{
		StreamID: "market-feed",
		TensorID: info.TensorID,
		Spec:     service.SpecRequest{Rank: &rank, Seed: &seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		next := repro.LowRankTensor(g, []int{70, 80}, 50, 8, 0.02)
		if stream, err = client.Absorb(ctx, stream.StreamID, next); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %s: K=%d after absorb %d (fitness %.4f)\n",
			stream.StreamID, stream.K, stream.Absorbs, stream.Meta.Fitness)
	}

	// The quota in action: tenant "burst" may have 1 job running and 2 more
	// queued; the fourth concurrent submit is rejected with 429 and a
	// Retry-After hint.
	slowIters, slowTol := 400, 0.0
	var rejected *service.APIError
	for i := 0; i < 4; i++ {
		_, err := client.SubmitJob(ctx, service.DecomposeRequest{
			TensorID: info.TensorID,
			Spec:     service.SpecRequest{Rank: &rank, MaxIters: &slowIters, Tol: &slowTol},
			Tenant:   "burst",
		})
		if errors.As(err, &rejected) {
			break
		} else if err != nil {
			log.Fatal(err)
		}
	}
	if rejected != nil {
		fmt.Printf("quota: %s (HTTP %d, Retry-After %s)\n",
			rejected.Body.Code, rejected.Body.Status, rejected.RetryAfter)
	}

	// The server's own view of all this traffic.
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served: %d tenants, %d tensors, %d streams\n",
		len(st.Engine.Tenants), st.Tensors, st.Streams)
}
