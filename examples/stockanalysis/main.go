// Stock analysis: the paper's discovery experiments (Section IV-E) on
// simulated US- and KR-style markets.
//
//  1. Build two irregular stock tensors (date × 88 features × stock) with
//     long-tailed listing periods (Fig. 8).
//
//  2. Decompose with DPar2 and compare price/indicator correlations between
//     the two markets via the rows of V (Fig. 12).
//
//  3. Find stocks similar to a target with k-NN and Random Walk with
//     Restart over Equation-(10) similarities (Table III).
//
//     go run ./examples/stockanalysis
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// One Engine (and its worker pool) serves both market analyses.
	eng := repro.NewEngine()
	defer eng.Close()
	ctx := context.Background()

	for _, market := range []struct {
		name string
		m    repro.StockMarket
	}{{"US-style market", repro.USMarket()}, {"KR-style market", repro.KRMarket()}} {
		g := repro.NewRNG(99)
		ten, sectors := repro.NewStockTensor(g, 60, 120, 800, market.m)
		res, err := eng.Decompose(ctx, ten, repro.WithSeed(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: K=%d stocks, fitness %.4f in %v ==\n",
			market.name, ten.K(), res.Fitness, res.TotalTime.Round(1e6))

		// Fig. 12: correlations between the latent vectors (rows of V) of
		// selected features.
		names := repro.StockFeatureNames()
		selected := []string{"OPENING", "CLOSING", "ATR14", "STOCH14", "OBV", "MACD"}
		idx := map[string]int{}
		for i, n := range names {
			idx[n] = i
		}
		sub := repro.NewMatrix(len(selected), res.V.Cols)
		for i, s := range selected {
			copy(sub.Row(i), res.V.Row(idx[s]))
		}
		corr := repro.CorrelationMatrix(sub)
		fmt.Printf("%-8s", "")
		for _, s := range selected {
			fmt.Printf("%9s", s)
		}
		fmt.Println()
		for i, s := range selected {
			fmt.Printf("%-8s", s)
			for j := range selected {
				fmt.Printf("%+9.2f", corr.At(i, j))
			}
			fmt.Println()
		}

		// Table III: similar stocks to a query, k-NN vs RWR.
		target := 0 // first stock
		targetRows := ten.Slices[target].Rows
		sim := repro.SimilarityGraph(ten.K(), func(i, j int) float64 {
			si, sj := ten.Slices[i], ten.Slices[j]
			if si.Rows < targetRows || sj.Rows < targetRows {
				return 0
			}
			// UkRows materializes just the trailing window from the
			// factored form — O(window·R²), not a full U_k per pair.
			ui := res.UkRows(i, si.Rows-targetRows, si.Rows)
			uj := res.UkRows(j, sj.Rows-targetRows, sj.Rows)
			return repro.StockSimilarity(ui, uj, 0.01)
		})
		knn := repro.KNN(sim, target, 5)
		rwr := repro.RWR(sim, target, repro.DefaultRWRConfig())
		fmt.Printf("\nquery stock #%d (sector %d); top-5 by kNN vs RWR:\n", target, sectors[target])
		fmt.Printf("%4s  %18s  %18s\n", "rank", "kNN (sector)", "RWR score@kNN-pick")
		for i, n := range knn {
			fmt.Printf("%4d  #%3d (sector %d)      score %.3f / rwr %.4f\n",
				i+1, n.Index, sectors[n.Index], n.Score, rwr[n.Index])
		}
		fmt.Println()
	}
}
