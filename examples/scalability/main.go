// Scalability: a miniature of the paper's Fig. 11 — how DPar2's running
// time grows with tensor size and rank compared to PARAFAC2-ALS.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.MaxIters = 10
	// One long-lived worker pool shared by every run below: the workers
	// (and their warm scratch arenas) are reused instead of being
	// re-created per decomposition. NewPool(n<=0) means GOMAXPROCS while
	// Threads<=0 means serial, hence the clamp.
	pool := repro.NewPool(max(1, cfg.Threads))
	defer pool.Close()
	cfg.Pool = pool

	fmt.Println("== running time vs tensor size (I x J x K, rank 10) ==")
	fmt.Printf("%-16s %12s %14s %8s\n", "size", "DPar2", "PARAFAC2-ALS", "ratio")
	for _, s := range [][3]int{{60, 60, 20}, {120, 60, 20}, {120, 120, 20}, {120, 120, 40}} {
		g := repro.NewRNG(1)
		ten := repro.RandomTensor(g, s[0], s[1], s[2])
		dp := mustRun(repro.DPar2, ten, cfg)
		als := mustRun(repro.ALS, ten, cfg)
		fmt.Printf("%-16s %12v %14v %7.1fx\n",
			fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]),
			dp.Round(time.Millisecond), als.Round(time.Millisecond),
			als.Seconds()/dp.Seconds())
	}

	fmt.Println("\n== running time vs rank (120x120x40) ==")
	fmt.Printf("%-6s %12s %14s %8s\n", "rank", "DPar2", "PARAFAC2-ALS", "ratio")
	g := repro.NewRNG(2)
	ten := repro.RandomTensor(g, 120, 120, 40)
	for _, r := range []int{5, 10, 20, 40} {
		c := cfg
		c.Rank = r
		dp := mustRun(repro.DPar2, ten, c)
		als := mustRun(repro.ALS, ten, c)
		fmt.Printf("%-6d %12v %14v %7.1fx\n", r,
			dp.Round(time.Millisecond), als.Round(time.Millisecond),
			als.Seconds()/dp.Seconds())
	}
}

func mustRun(f func(*repro.Irregular, repro.Config) (*repro.Result, error), t *repro.Irregular, cfg repro.Config) time.Duration {
	res, err := f(t, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.TotalTime
}
