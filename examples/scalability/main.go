// Scalability: a miniature of the paper's Fig. 11 — how DPar2's running
// time grows with tensor size and rank compared to PARAFAC2-ALS — plus the
// Engine's batched job service running a fleet of decompositions against
// one shared pool.
//
//	go run ./examples/scalability
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// One Engine for the whole run: its worker pool (and warm scratch
	// arenas) are reused across every decomposition below instead of being
	// re-created per call.
	eng := repro.NewEngine(repro.WithEngineThreads(6))
	defer eng.Close()
	ctx := context.Background()

	fmt.Println("== running time vs tensor size (I x J x K, rank 10) ==")
	fmt.Printf("%-16s %12s %14s %8s\n", "size", "DPar2", "PARAFAC2-ALS", "ratio")
	for _, s := range [][3]int{{60, 60, 20}, {120, 60, 20}, {120, 120, 20}, {120, 120, 40}} {
		g := repro.NewRNG(1)
		ten := repro.RandomTensor(g, s[0], s[1], s[2])
		dp := mustRun(eng, ctx, ten, repro.WithMethod(repro.MethodDPar2), repro.WithMaxIters(10))
		als := mustRun(eng, ctx, ten, repro.WithMethod(repro.MethodALS), repro.WithMaxIters(10))
		fmt.Printf("%-16s %12v %14v %7.1fx\n",
			fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]),
			dp.Round(time.Millisecond), als.Round(time.Millisecond),
			als.Seconds()/dp.Seconds())
	}

	fmt.Println("\n== running time vs rank (120x120x40) ==")
	fmt.Printf("%-6s %12s %14s %8s\n", "rank", "DPar2", "PARAFAC2-ALS", "ratio")
	g := repro.NewRNG(2)
	ten := repro.RandomTensor(g, 120, 120, 40)
	for _, r := range []int{5, 10, 20, 40} {
		dp := mustRun(eng, ctx, ten,
			repro.WithMethod(repro.MethodDPar2), repro.WithRank(r), repro.WithMaxIters(10))
		als := mustRun(eng, ctx, ten,
			repro.WithMethod(repro.MethodALS), repro.WithRank(r), repro.WithMaxIters(10))
		fmt.Printf("%-6d %12v %14v %7.1fx\n", r,
			dp.Round(time.Millisecond), als.Round(time.Millisecond),
			als.Seconds()/dp.Seconds())
	}

	// One very tall slice is the stage-1 straggler and memory ceiling:
	// WithShardRows splits its sketch into row shards that spread across
	// the whole pool (and keep per-shard scratch arena-recyclable) while
	// producing an equivalent factorization.
	fmt.Println("\n== tall-slice sharding: one 32768-row slice (stage 1) ==")
	fmt.Printf("%-24s %12s %12s %10s\n", "ShardRows", "preprocess", "total", "fitness")
	gt := repro.NewRNG(3)
	tall := repro.LowRankTensor(gt, []int{32768, 2048, 3072}, 64, 10, 0.01)
	for _, sr := range []int{-1, 4096} {
		res, err := eng.Decompose(ctx, tall,
			repro.WithShardRows(sr), repro.WithMaxIters(10))
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d (8 shards)", sr)
		if sr < 0 {
			label = "off (whole slice)"
		}
		fmt.Printf("%-24s %12v %12v %10.6f\n", label,
			res.PreprocessTime.Round(time.Millisecond),
			res.TotalTime.Round(time.Millisecond), res.Fitness)
	}

	// The serving path: a fleet of tensors decomposed through the
	// admission-controlled job queue — per-tenant quotas keep the "noisy"
	// tenant's burst from starving anyone, the "interactive" tenant's
	// high-priority jobs overtake the pre-queued "batch" backlog, and the
	// metrics hook aggregates it all into a served-traffic table. Every
	// job still shares the one pool and its scratch arenas, and results
	// stay bit-identical to serial runs whatever order the queue picks.
	fmt.Println("\n== admission-controlled job service: 3 tenants through Engine.Submit ==")
	stats := &repro.EngineStats{}
	srv := repro.NewEngine(
		repro.WithEnginePool(eng.Pool()), // share the pool; we keep ownership
		repro.WithJobConcurrency(2),
		repro.WithQueueDepth(16),
		repro.WithTenantQuota(8, 2),
		repro.WithTenantQuotaOverrides(map[string]repro.TenantQuota{
			"noisy": {MaxQueued: 2, MaxRunning: 1}, // one greedy tenant, contained
		}),
		repro.WithEngineMetrics(stats),
	)
	defer srv.Close()

	start := time.Now()
	var pending []<-chan repro.JobResult
	submit := func(tenant string, priority, n, rows int) {
		for i := 0; i < n; i++ {
			gi := repro.NewRNG(uint64(100 + len(pending)))
			pending = append(pending, srv.Submit(ctx, repro.Job{
				Tensor:   repro.RandomTensor(gi, rows, 80, 24),
				Tag:      fmt.Sprintf("%s-%02d", tenant, i),
				Tenant:   tenant,
				Priority: priority,
				Options: []repro.Option{
					repro.WithRank(10), repro.WithMaxIters(10), repro.WithSeed(uint64(i)),
				},
			}))
		}
	}
	submit("batch", 0, 6, 200)       // low-priority backlog, queued first
	submit("interactive", 10, 6, 60) // overtakes the backlog
	submit("noisy", 0, 8, 60)        // bursts past MaxQueued 2: excess rejected

	var rejected int
	for _, ch := range pending {
		jr := <-ch
		switch {
		case jr.Err == nil:
		case errors.Is(jr.Err, repro.ErrQuotaExceeded):
			rejected++ // the typed *QuotaError names the tenant
		default:
			log.Fatalf("%s: %v", jr.Tag, jr.Err)
		}
	}
	fmt.Print(stats.String())
	fmt.Printf("noisy submits rejected: %d\nfleet wall time: %v\n",
		rejected, time.Since(start).Round(time.Millisecond))
}

func mustRun(eng *repro.Engine, ctx context.Context, t *repro.Irregular, opts ...repro.Option) time.Duration {
	res, err := eng.Decompose(ctx, t, opts...)
	if err != nil {
		log.Fatal(err)
	}
	return res.TotalTime
}
