// Fault detection: use PARAFAC2 residuals to find anomalous slices — the
// semiconductor-etch use case (Wise et al. 2001) the paper cites as a
// classical PARAFAC2 application.
//
// We simulate a fleet of process runs (sensor × time matrices sharing a
// daily profile), corrupt a few runs, decompose with DPar2, and flag the
// runs whose reconstruction residual is a robust-z-score outlier.
//
//	go run ./examples/faultdetection
package main

import (
	"context"
	"fmt"
	"log"
)

import "repro"

func main() {
	g := repro.NewRNG(13)

	// 40 normal process runs.
	ten := repro.NewTrafficTensor(g, 40, 60, 96)

	// Corrupt three runs with fault signatures that violate the shared
	// (time-of-day) structure the healthy fleet obeys. Note that faults a
	// per-slice factor can absorb (e.g. a uniform scale change, which S_k
	// soaks up) are invisible to PARAFAC2 residuals by design.
	const (
		scrambledTime = iota // time bins randomly permuted
		clockFault           // daily profile circularly shifted 6 hours
		noiseBurst           // profile replaced by white noise
	)
	faults := map[int]int{5: scrambledTime, 17: clockFault, 31: noiseBurst}
	faultName := []string{
		"scrambled time axis (random column permutation)",
		"clock fault (daily profile shifted by 6 hours)",
		"white-noise burst (profile replaced by noise)",
	}
	for k, kind := range faults {
		s := ten.Slices[k]
		switch kind {
		case scrambledTime:
			// Each sensor's readings get an independent random shuffle of
			// the time bins: per-row permutations are jointly high-rank,
			// so no shared V component can absorb them.
			g2 := repro.NewRNG(uint64(k))
			for i := 0; i < s.Rows; i++ {
				row := s.Row(i)
				perm := g2.Perm(len(row))
				shuffled := make([]float64, len(row))
				for j, p := range perm {
					shuffled[j] = row[p]
				}
				copy(row, shuffled)
			}
		case clockFault:
			shift := s.Cols / 4
			for i := 0; i < s.Rows; i++ {
				row := s.Row(i)
				shifted := make([]float64, len(row))
				for j := range row {
					shifted[j] = row[(j+shift)%len(row)]
				}
				copy(row, shifted)
			}
		case noiseBurst:
			g2 := repro.NewRNG(uint64(k))
			g2.NormSlice(s.Data)
		}
	}

	eng := repro.NewEngine()
	defer eng.Close()
	// The healthy fleet is rank-1 (shared daily profile × per-sensor
	// scale). A tight rank matters for detection: every spare component is
	// a place the least-squares fit can hide one slice-specific fault
	// pattern inside the shared V.
	res, err := eng.Decompose(context.Background(), ten, repro.WithRank(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed %d runs: fitness %.4f in %v\n\n",
		ten.K(), res.Fitness, res.TotalTime.Round(1e6))

	anomalies := repro.DetectAnomalies(ten, res, 3.5)
	fmt.Printf("%-6s %-10s %-8s %s\n", "run", "residual", "z-score", "injected fault")
	for _, a := range anomalies {
		name := "(false positive)"
		if kind, ok := faults[a.Slice]; ok {
			name = faultName[kind]
		}
		fmt.Printf("#%-5d %-10.3f %-8.1f %s\n", a.Slice, a.Residual, a.Score, name)
	}

	detected := map[int]bool{}
	for _, a := range anomalies {
		detected[a.Slice] = true
	}
	hits := 0
	for k := range faults {
		if detected[k] {
			hits++
		}
	}
	fmt.Printf("\nrecall: %d/%d injected faults detected, %d flags total\n",
		hits, len(faults), len(anomalies))
}
