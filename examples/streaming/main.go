// Streaming: maintain a PARAFAC2 decomposition while slices keep arriving —
// the future-work setting named in the paper's conclusion (cf. SPADE for
// sparse data). New slices are compressed once and folded into the existing
// two-stage representation; old slices are never touched again.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	g := repro.NewRNG(21)

	// The "full history" this stream will eventually have seen: 48 slices.
	rows := make([]int, 48)
	for i := range rows {
		rows[i] = 80 + 7*i%220
	}
	full := repro.LowRankTensor(g, rows, 40, 8, 0.03)

	// One Engine hosts both the stream and the from-scratch comparison run.
	eng := repro.NewEngine()
	defer eng.Close()
	ctx := context.Background()
	opts := []repro.Option{repro.WithRank(8), repro.WithMaxIters(20)}

	// Bootstrap with the first 12 slices.
	first, err := repro.NewIrregular(full.Slices[:12])
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	stream, err := eng.NewStream(ctx, first, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: K=%2d  fitness(all seen)=%.4f  (%v)\n",
		stream.K(), fitnessOverSeen(full, stream), time.Since(start).Round(time.Millisecond))

	// Absorb the rest in batches of 6, as if they arrived over time. Each
	// absorb warm-starts from the previous factors and runs at most
	// stream.RefreshIters iterations instead of the full 20. The factors
	// stay in lazy factored form (Q_k = A_k Z_k P_kᵀ), so an absorb never
	// touches the already-absorbed slices — its latency is independent of
	// how much history the stream carries. A failed absorb is retryable:
	// the stream (RNG included) is untouched, and the retry is
	// bit-identical to a run that was never interrupted.
	// Streams are durable: SaveStream writes a complete, atomically-replaced
	// checkpoint (state, factors, RNG), and ResumeStream picks the stream
	// back up in another process as if nothing happened. We checkpoint
	// mid-stream here and prove the resumed copy is bit-identical below.
	ckptDir, err := os.MkdirTemp("", "streaming-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckpt := filepath.Join(ckptDir, "stream.dpc2")

	for lo := 12; lo < 48; lo += 6 {
		batchStart := time.Now()
		if err := stream.AbsorbCtx(ctx, full.Slices[lo:lo+6]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("absorb 6 : K=%2d  fitness(all seen)=%.4f  (%v, %d warm iters)\n",
			stream.K(), fitnessOverSeen(full, stream),
			time.Since(batchStart).Round(time.Millisecond), stream.Result().Iters)
		if stream.K() == 30 {
			if err := eng.SaveStream(ckpt, stream); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("           checkpointed at K=%d\n", stream.K())
		}
	}

	// Resume the mid-stream checkpoint and feed it the batches it missed:
	// the catch-up is bit-identical to the stream that never stopped.
	resumed, err := eng.ResumeStream(ctx, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	for lo := 30; lo < 48; lo += 6 {
		if err := resumed.AbsorbCtx(ctx, full.Slices[lo:lo+6]); err != nil {
			log.Fatal(err)
		}
	}
	identical := math.Float64bits(resumed.Result().Fitness) == math.Float64bits(stream.Result().Fitness) &&
		resumed.Result().H.EqualApprox(stream.Result().H, 0)
	fmt.Printf("\nresumed from K=30 checkpoint, caught up to K=%d: bit-identical=%v\n",
		resumed.K(), identical)

	// The refresh reports a compressed-space fitness (exact against the
	// compressed approximation); FitnessKind tells it apart from the true
	// fitness eng.Decompose reports. Materialize() opts back into eager
	// dense Q_k when repeated slice access is coming.
	res := stream.Result()
	fmt.Printf("\nstream result: fitness %.4f (kind %q), K=%d, Q factored=%v\n",
		res.Fitness, res.FitnessKind, res.K(), res.Factored())
	u := res.Uk(0) // materialized lazily from A_0 Z_0 P_0ᵀ H
	fmt.Printf("U_0 is %dx%d, materialized on demand\n", u.Rows, u.Cols)

	// Compare against decomposing the full tensor from scratch.
	batch, err := eng.Decompose(ctx, full, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrom-scratch on all 48 slices: fitness %.4f in %v\n",
		batch.Fitness, batch.TotalTime.Round(time.Millisecond))
	fmt.Printf("streaming final:               fitness %.4f (compressed state %.2f MB)\n",
		fitnessOverSeen(full, stream), float64(stream.Compressed().SizeBytes())/(1<<20))
}

func fitnessOverSeen(full *repro.Irregular, s *repro.StreamingDPar2) float64 {
	seen, err := repro.NewIrregular(full.Slices[:s.K()])
	if err != nil {
		log.Fatal(err)
	}
	return repro.Fitness(seen, s.Result())
}
