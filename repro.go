// Package repro is a from-scratch Go implementation of DPar2 (Jang & Kang,
// "DPar2: Fast and Scalable PARAFAC2 Decomposition for Irregular Dense
// Tensors", ICDE 2022), together with the PARAFAC2 baselines the paper
// evaluates against and the analytics its discovery experiments use.
//
// An irregular tensor is a collection of dense matrices {X_k} sharing a
// column count J but with individual row counts I_k (e.g. stocks with
// different listing periods, songs with different durations). PARAFAC2
// approximates each slice as X_k ≈ U_k S_k Vᵀ with U_k = Q_k H,
// Q_kᵀQ_k = I, S_k diagonal, and H, V shared across slices.
//
// # Quickstart
//
// Everything runs through a long-lived Engine, which owns the shared compute
// runtime (worker pool + workspace arena) and dispatches to any registered
// algorithm:
//
//	eng := repro.NewEngine() // pool width = DefaultConfig().Threads (6)
//	defer eng.Close()
//
//	g := repro.NewRNG(1)
//	ten := repro.LowRankTensor(g, []int{300, 500, 400}, 50, 10, 0.01)
//	res, err := eng.Decompose(ctx, ten,
//		repro.WithMethod(repro.MethodDPar2), // the default
//		repro.WithRank(10), repro.WithSeed(7))
//	if err != nil { ... }
//	fmt.Println(res.Fitness, res.Iters, res.TotalTime)
//
// The context is honored between ALS iterations and between the parallel
// phases inside one, so a decomposition is cancellable and deadline-bounded;
// on cancellation the unwrapped ctx.Err() comes back and no workers leak.
// The four algorithms of the paper (MethodDPar2, MethodRDALS, MethodALS,
// MethodSPARTan) ship registered; Methods lists the registry.
//
// # The multi-tenant job service: admission control
//
// For servers decomposing many tensors against one runtime, Submit runs
// jobs through an admission-controlled queue drained by a fixed set of job
// workers — all on the Engine's one pool, with the arena keeping
// steady-state allocation near zero across jobs. The queue is a priority
// queue with per-tenant quotas, so N tenants share the Engine without a
// FIFO letting one of them starve the rest:
//
//	stats := &repro.EngineStats{} // ready-made metrics hook
//	eng := repro.NewEngine(
//		repro.WithTenantQuota(8, 2), // per tenant: <=8 queued, <=2 running
//		repro.WithTenantQuotaOverrides(map[string]repro.TenantQuota{
//			"batch": {MaxQueued: 4, MaxRunning: 1}, // squeezed pipeline
//		}),
//		repro.WithEngineMetrics(stats),
//	)
//	defer eng.Close()
//
//	ch := eng.Submit(ctx, repro.Job{
//		Tensor:   t,
//		Tag:      "req-42",
//		Tenant:   "interactive", // quota bucket ("" is the default bucket)
//		Priority: 10,            // higher runs first; ties are FIFO
//		Options:  []repro.Option{repro.WithRank(10), repro.WithSeed(7)},
//	})
//	jr := <-ch // exactly one result per job
//
// Queued jobs run in (Priority descending, submission order) — a saturated
// queue's high-priority submits overtake the pre-queued backlog. A tenant
// at its MaxQueued quota gets an immediate typed rejection (a *QuotaError
// matching ErrQuotaExceeded, carrying the tenant) without consuming a
// shared queue slot; in-quota jobs still get backpressure (Submit blocks
// while the queue is full). MaxRunning is enforced by the scheduler
// skipping a capped tenant's jobs — the workers stay busy with other
// tenants — until one of its running jobs completes. Quota is released when
// a job finishes and when a queued job's context is cancelled.
//
// JobResult.Err taxonomy — exactly one of Result/Err is set, and Err is one
// of:
//
//   - the job context's error (ctx.Err()), if cancelled while queued or
//     mid-run; a job cancelled while queued releases its tenant's quota and
//     never occupies a worker;
//   - ErrEngineClosed, if submitted after Close;
//   - a *QuotaError matching ErrQuotaExceeded, if the tenant was over its
//     queued quota;
//   - the decomposition's own error otherwise.
//
// The WithEngineMetrics hook observes the whole flow: queue depth on admit
// and pop, per-job queue-wait and run latency, per-tenant
// admitted/rejected/completed/cancelled events. EngineStats aggregates them
// into a printable served-traffic table (see examples/scalability and
// cmd/experiments -fleet).
//
// Results are deterministic for a given tensor and options — bit-identical
// whether a job runs alone, concurrently with others, at any pool width, or
// reordered by any priority/quota schedule. Priorities change WHEN a job
// runs, never what it computes.
//
// # Option validation
//
// NewEngine options validate eagerly and panic on values that would
// otherwise silently fall back to a default: WithQueueDepth and
// WithJobConcurrency require positive counts, WithTenantQuota and
// WithTenantQuotaOverrides require positive bounds (leave a tenant
// quota-less for "unbounded"), WithEngineMetrics requires a non-nil hook.
// Per-call Options (WithRank, WithMaxIters, ...) instead return an error
// from the call they were passed to, before any work starts.
//
// # Threading model
//
// The Engine's pool is the single parallelism knob: size it with
// WithEngineThreads (thread counts <= 0 mean serial — the one clamping rule,
// applied by compute.WidthFromThreads everywhere a thread count becomes a
// pool) or hand an existing pool to WithEnginePool. Every parallel phase
// (slice compression, the ALS iteration kernels, fitness evaluation) of
// every call runs on that pool. The pool contributes at most width-1 worker
// goroutines; each submitting goroutine participates in its own work, so N
// concurrent callers run on at most width-1 + N goroutines.
//
// # Tall slices: sharded stage-1 sketches
//
// Stage-1 cost and scratch are proportional to the tallest slice, so one
// slice with I_k ≫ 10⁵ rows is both the latency straggler and the memory
// ceiling. Slices taller than the ShardRows threshold (DefaultShardRows =
// 64k rows; WithShardRows per call, or Config.ShardRows) are therefore
// sketched in row shards: each shard is an independent work unit balanced
// across the pool, and the shard bases are merged by a second small
// randomized SVD. The factor contract is unchanged (A_k column orthonormal,
// I_k×R) and results stay bit-reproducible for a fixed tensor and options at
// any pool width; peak stage-1 scratch drops to O(ShardRows·(R+oversample))
// per in-flight shard, inside the workspace arena's recyclable range.
// WithShardRows(-1) disables sharding (the pre-sharding behavior).
//
// # Lazy factored Q and fitness kinds
//
// DPar2 results hold Q in factored form (Q_k = A_k Z_k P_kᵀ, with A_k the
// compressed basis and Z_k, P_k tiny R×R matrices): the dense I_k×R slices
// are materialized lazily by Result.Qk, Uk, UkRows, and ReconstructSlice, and
// never by the solver itself. Call Result.Materialize once to cache every
// dense slice when repeated access is coming (the pre-lazy behavior);
// serialization (internal/dataio) round-trips the factored form without
// materializing.
//
// Result.FitnessKind says what Result.Fitness was measured against:
// FitnessTrue is the fitness against the input tensor (Engine.Decompose and
// the package Fitness helpers always produce this kind), FitnessCompressed
// is the compressed-space estimate that Engine.DecomposeCompressed and
// streaming refreshes report — exact against the compressed approximation,
// off from the true value only by the one-time compression error. Re-evaluate
// with Engine.Fitness (or Fitness) when the true value is needed.
//
// # Streaming absorbs
//
// Lazy Q is what makes streaming absorbs independent of the history: an
// Absorb touches the new slices' sketches, an R-sized stage-2 update, an
// O(K·R²) in-place basis rotation, and a few compressed-space refresh
// iterations — no O(I_k) work on any previously absorbed slice, and per-batch
// allocations that do not grow with K (BenchmarkAbsorb guards both in CI).
//
// Absorb's retry contract: an error from the append phase means the batch was
// NOT absorbed — the stream, including its RNG state, is unchanged, and
// retrying the same batch yields a stream bit-identical to one that was never
// interrupted. An error from the refresh phase (wrapped with "batch
// absorbed") means the slices ARE in the stream but the factors are stale:
// call StreamingDPar2.Refresh; re-absorbing would duplicate the batch.
// StreamingDPar2.Clone forks a stream cheaply (shared immutable bases,
// copied mutable state) for what-if batches.
//
// # Durable state
//
// Streams survive their process: Engine.SaveStream writes a complete
// checkpoint (config, RNG state, compressed representation, factors)
// atomically — write-temp, fsync, rename — and Engine.ResumeStream restores
// it, such that checkpoint → restore → Absorb is bit-identical to a stream
// that was never interrupted. With WithStateDir and WithResultCache the
// Engine also keeps a content-addressed, LRU-bounded result cache: a
// repeated Decompose of the same tensor under the same deterministic knobs
// is served from disk without running the method (Engine.CacheCounters and
// the CacheMetrics hook report hits/misses). All persisted files — tensors
// and results (internal/dataio), checkpoints, cache entries — are written
// atomically and carry a sha256 content checksum; readers reject corrupt or
// truncated input with typed errors and cap allocations against hostile
// headers. docs/DURABILITY.md documents the formats, the crash-safety
// contract, and the cache key in full.
//
// # Serving over HTTP
//
// Every deterministic knob of a call compiles into a serializable Spec:
// Engine.ResolveSpec turns a set of Options into the fully resolved form,
// WithSpec replays one, and equal Specs mean bit-identical results (the
// result cache is keyed accordingly). That is what makes the Engine
// servable: cmd/dpar2d exposes Decompose/Submit/NewStream over HTTP/JSON —
// tensor upload, async job handles, durable streaming sessions that survive
// a daemon kill bit-identically, per-tenant 429s off the admission layer,
// and /stats off EngineStats. The API contract, error taxonomy, and session
// stickiness rules live in docs/SERVICE.md; the typed Go client is
// internal/service.Client, and examples/service walks the whole surface.
//
// # Migration from the free functions
//
// The per-method free functions (DPar2, ALS, RDALS, SPARTan,
// DPar2FromCompressed, Compress, NewStreamingDPar2) and the Config.Threads /
// Config.Pool knobs still work but are deprecated in favor of the Engine:
//
//	res, err := repro.DPar2(ten, cfg)                  // before
//	res, err := eng.Decompose(ctx, ten,                // after
//		repro.WithConfig(cfg))                     // or granular With* options
//
// WithConfig(cfg) carries an existing Config over verbatim (its Threads/Pool
// fields are superseded by the Engine's pool). The wrappers remain for one
// release and then become thin shims over a package-default Engine.
//
// The heavy lifting lives in internal packages (compute, mat, lapack, rsvd,
// tensor, cp, parafac2, scheduler, datagen, stats); this package re-exports
// the surface a downstream user needs.
package repro

import (
	"repro/internal/compute"
	"repro/internal/datagen"
	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Pool is the shared compute runtime: a long-lived worker pool plus
// size-bucketed scratch reuse that all decomposition phases run on. Set
// Config.Pool to share one across decompositions.
type Pool = compute.Pool

// NewPool returns a worker pool of width n. Close it when done; a nil *Pool
// means serial execution. NewPool(n <= 0) means GOMAXPROCS — the natural
// default for a pool you size explicitly. To derive a pool from a
// Config-style thread count (where <= 0 means serial), use
// NewPoolFromThreads; that helper is the single place the thread-count
// convention is interpreted.
func NewPool(n int) *Pool { return compute.NewPool(n) }

// NewPoolFromThreads builds a pool from a Config-style thread count under
// the repository's one clamping rule: threads <= 0 means a serial width-1
// pool (never GOMAXPROCS). The Engine and every wrapper use this same rule.
func NewPoolFromThreads(threads int) *Pool { return compute.NewPoolFromThreads(threads) }

// Matrix is a row-major dense matrix of float64.
type Matrix = mat.Dense

// Irregular is an irregular 3-order tensor: K dense slices with a shared
// column count and per-slice row counts.
type Irregular = tensor.Irregular

// Config carries the decomposition parameters (rank, iterations, tolerance,
// threads, randomized-SVD knobs).
type Config = parafac2.Config

// Result is the output of a PARAFAC2 decomposition: factors H, V, S_k, Q_k
// plus fitness, iteration count, and a timing/footprint breakdown. DPar2
// results keep Q_k in lazy factored form — see the package-doc section on
// lazy factored Q, and Result.Qk/Uk/UkRows/Materialize.
type Result = parafac2.Result

// FitnessKind tags what Result.Fitness was measured against (see the
// package doc): the input tensor (FitnessTrue) or the compressed
// approximation (FitnessCompressed).
type FitnessKind = parafac2.FitnessKind

// Fitness kinds, re-exported from internal/parafac2.
const (
	FitnessUnset      = parafac2.FitnessUnset
	FitnessTrue       = parafac2.FitnessTrue
	FitnessCompressed = parafac2.FitnessCompressed
)

// Compressed is the two-stage randomized-SVD compression of an irregular
// tensor that DPar2 iterates on.
type Compressed = parafac2.Compressed

// RNG is the deterministic random number generator used for initialization,
// sketches, and data generation.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// DefaultConfig mirrors the paper's experimental settings (rank 10, at most
// 32 ALS iterations, 6 threads, oversampling 8, one power iteration).
func DefaultConfig() Config { return parafac2.DefaultConfig() }

// DefaultShardRows is the stage-1 sharding threshold applied when
// Config.ShardRows is 0 (and by WithShardRows(0)): slices taller than this
// many rows are sketched in row shards and merged hierarchically.
const DefaultShardRows = parafac2.DefaultShardRows

// NewIrregular wraps slices (which must share a column count) as an
// irregular tensor.
func NewIrregular(slices []*Matrix) (*Irregular, error) { return tensor.NewIrregular(slices) }

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.New(rows, cols) }

// NewMatrixFromData wraps row-major data as a matrix without copying.
func NewMatrixFromData(rows, cols int, data []float64) *Matrix {
	return mat.NewFromData(rows, cols, data)
}

// DPar2 decomposes an irregular dense tensor with the paper's method:
// two-stage randomized-SVD compression followed by ALS iterations whose
// per-iteration cost O(JR² + KR³) is independent of the slice heights.
//
// Deprecated: use Engine.Decompose with WithMethod(MethodDPar2) — it adds
// cancellation, a shared pool, and the batched Submit path. This wrapper
// remains for one release.
func DPar2(t *Irregular, cfg Config) (*Result, error) { return parafac2.DPar2(t, cfg) }

// Compress runs only the two-stage compression (lines 2-6 of Algorithm 3),
// for callers that amortize preprocessing across several decompositions.
//
// Deprecated: use Engine.Compress, which adds cancellation and runs on the
// Engine's shared pool. This wrapper remains for one release.
func Compress(t *Irregular, cfg Config) *Compressed { return parafac2.Compress(t, cfg) }

// DPar2FromCompressed runs DPar2's iteration phase on a previously
// compressed tensor. Result.Fitness is the compressed-space estimate
// 1 − e/‖X̃‖² — exact against the compressed approximation X̃ the iteration
// sees, differing from the fitness against the original tensor only by the
// one-time compression error; use Fitness when the tensor is at hand.
//
// Deprecated: use Engine.DecomposeCompressed. This wrapper remains for one
// release.
func DPar2FromCompressed(c *Compressed, cfg Config) (*Result, error) {
	return parafac2.DPar2FromCompressed(c, cfg)
}

// ALS is the classical PARAFAC2-ALS baseline (Algorithm 2; Kiers et al.
// 1999): every iteration recomputes against the full input tensor.
//
// Deprecated: use Engine.Decompose with WithMethod(MethodALS). This wrapper
// remains for one release.
func ALS(t *Irregular, cfg Config) (*Result, error) { return parafac2.ALS(t, cfg) }

// RDALS is the RD-ALS baseline (Cheng & Haardt 2019): deterministic
// dimensionality reduction once, ALS on the reduced slices, full
// reconstruction error for convergence.
//
// Deprecated: use Engine.Decompose with WithMethod(MethodRDALS). This
// wrapper remains for one release.
func RDALS(t *Irregular, cfg Config) (*Result, error) { return parafac2.RDALS(t, cfg) }

// SPARTan is a SPARTan-style baseline (Perros et al. 2017) adapted to dense
// data: slice-parallel PARAFAC2-ALS with fused MTTKRP accumulation.
//
// Deprecated: use Engine.Decompose with WithMethod(MethodSPARTan). This
// wrapper remains for one release.
func SPARTan(t *Irregular, cfg Config) (*Result, error) { return parafac2.SPARTan(t, cfg) }

// Fitness evaluates 1 − Σ‖X_k−X̂_k‖²/Σ‖X_k‖² of a result against a tensor —
// always the FitnessTrue quantity, whatever kind Result.Fitness carries.
// Factored results are evaluated through their small factors without
// materializing any dense Q_k.
func Fitness(t *Irregular, r *Result) float64 { return parafac2.Fitness(t, r) }

// SliceResiduals returns ‖X_k − X̂_k‖/‖X_k‖ per slice — elevated residuals
// flag slices the shared factors cannot explain (fault detection, one of
// PARAFAC2's classical applications).
func SliceResiduals(t *Irregular, r *Result) []float64 { return parafac2.SliceResiduals(t, r) }

// Anomaly flags one slice singled out by residual analysis.
type Anomaly = parafac2.Anomaly

// DetectAnomalies ranks slices whose reconstruction residual deviates from
// the cohort by more than threshold robust z-scores (≈3.5 is conventional).
func DetectAnomalies(t *Irregular, r *Result, threshold float64) []Anomaly {
	return parafac2.DetectAnomalies(t, r, threshold)
}

// FactorMatchScore compares two factor matrices up to column permutation
// and sign via greedy Tucker-congruence matching (1 = identical components).
func FactorMatchScore(a, b *Matrix) float64 { return stats.FactorMatchScore(a, b) }

// StreamingDPar2 maintains a PARAFAC2 decomposition over a growing tensor:
// new slices are absorbed into the compressed representation without
// recompressing the old ones (the paper's named future-work setting), and
// each Absorb warm-starts the factor refresh from the previous result with
// a small iteration bound (StreamingDPar2.RefreshIters).
type StreamingDPar2 = parafac2.StreamingDPar2

// NewStreamingDPar2 initializes a stream with a first batch of slices.
//
// Deprecated: use Engine.NewStream, which adds cancellation and keeps the
// stream on the Engine's shared pool. This wrapper remains for one release.
func NewStreamingDPar2(initial *Irregular, cfg Config) (*StreamingDPar2, error) {
	return parafac2.NewStreamingDPar2(initial, cfg)
}

// ----- Synthetic data generators (stand-ins for the paper's datasets) -----

// RandomTensor mirrors Tensor Toolbox's tenrand(I, J, K): K equal-height
// slices with uniform [0,1) entries — the scalability-study workload.
func RandomTensor(g *RNG, i, j, k int) *Irregular { return datagen.RandomIrregular(g, i, j, k) }

// LowRankTensor builds an irregular tensor with exact PARAFAC2 structure of
// the given rank plus relative Gaussian noise.
func LowRankTensor(g *RNG, rows []int, j, rank int, noise float64) *Irregular {
	return datagen.LowRank(g, rows, j, rank, noise)
}

// StockMarket parameterizes the market simulator.
type StockMarket = datagen.StockMarket

// USMarket / KRMarket mirror the two stock datasets of the paper: a
// developed market where volume tracks price moves, and a higher-volatility
// market where it does not (the Fig. 12 contrast).
func USMarket() StockMarket { return datagen.DefaultUSMarket() }
func KRMarket() StockMarket { return datagen.DefaultKRMarket() }

// NewStockTensor simulates a market of k stocks with listing periods in
// [minDays, maxDays] drawn long-tailed (Fig. 8), each a (days × 88)
// feature matrix. It also returns each stock's sector id.
func NewStockTensor(g *RNG, k, minDays, maxDays int, m StockMarket) (*Irregular, []int) {
	return datagen.StockTensor(g, k, minDays, maxDays, m)
}

// StockFeatureNames returns the 88 feature-column labels of stock tensors.
func StockFeatureNames() []string { return datagen.StockFeatureNames() }

// NewSpectrogramTensor simulates k songs/sounds as log-power spectrograms
// (time × freqBins), the FMA/Urban stand-in.
func NewSpectrogramTensor(g *RNG, k, minFrames, maxFrames, freqBins int) *Irregular {
	return datagen.SpectrogramTensor(g, k, minFrames, maxFrames, freqBins)
}

// NewVideoFeatureTensor simulates k videos as (frame × feature) matrices,
// the Activity/Action stand-in.
func NewVideoFeatureTensor(g *RNG, k, minFrames, maxFrames, features, classes int) *Irregular {
	return datagen.VideoFeatureTensor(g, k, minFrames, maxFrames, features, classes)
}

// NewTrafficTensor simulates k days of (sensor × time-of-day) volumes, the
// Traffic/PEMS-SF stand-in.
func NewTrafficTensor(g *RNG, k, sensors, timestamps int) *Irregular {
	return datagen.TrafficTensor(g, k, sensors, timestamps)
}

// ----- Discovery analytics (Section IV-E) -----

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(x, y []float64) float64 { return stats.Pearson(x, y) }

// CorrelationMatrix returns pairwise Pearson correlations between the rows
// of m (Fig. 12: rows of V are per-feature latent vectors).
func CorrelationMatrix(m *Matrix) *Matrix { return stats.CorrelationMatrix(m) }

// StockSimilarity is Equation (10): exp(−γ‖U_i − U_j‖_F²).
func StockSimilarity(ui, uj *Matrix, gamma float64) float64 {
	return stats.ExpSimilarity(ui, uj, gamma)
}

// Neighbor pairs an item index with a similarity/RWR score.
type Neighbor = stats.Neighbor

// KNN returns the k most similar items to query q under the similarity
// matrix (Table III(a)).
func KNN(sim *Matrix, q, k int) []Neighbor { return stats.KNN(sim, q, k) }

// RWRConfig configures Random Walk with Restart (restart prob 0.15, 100
// iterations in the paper).
type RWRConfig = stats.RWRConfig

// DefaultRWRConfig matches Section IV-E.
func DefaultRWRConfig() RWRConfig { return stats.DefaultRWRConfig() }

// RWR returns Random-Walk-with-Restart scores over the similarity graph adj
// from query q (Table III(b)).
func RWR(adj *Matrix, q int, cfg RWRConfig) []float64 { return stats.RWR(adj, q, cfg) }

// SimilarityGraph builds the Equation (11) adjacency: sim(i,j) off the
// diagonal, zeros on it.
func SimilarityGraph(n int, sim func(i, j int) float64) *Matrix {
	return stats.SimilarityGraph(n, sim)
}
