// Package repro is a from-scratch Go implementation of DPar2 (Jang & Kang,
// "DPar2: Fast and Scalable PARAFAC2 Decomposition for Irregular Dense
// Tensors", ICDE 2022), together with the PARAFAC2 baselines the paper
// evaluates against and the analytics its discovery experiments use.
//
// An irregular tensor is a collection of dense matrices {X_k} sharing a
// column count J but with individual row counts I_k (e.g. stocks with
// different listing periods, songs with different durations). PARAFAC2
// approximates each slice as X_k ≈ U_k S_k Vᵀ with U_k = Q_k H,
// Q_kᵀQ_k = I, S_k diagonal, and H, V shared across slices.
//
// # Quickstart
//
//	g := repro.NewRNG(1)
//	ten := repro.LowRankTensor(g, []int{300, 500, 400}, 50, 10, 0.01)
//	cfg := repro.DefaultConfig() // rank 10, ≤32 iterations, 6 threads
//	res, err := repro.DPar2(ten, cfg)
//	if err != nil { ... }
//	fmt.Println(res.Fitness, res.Iters, res.TotalTime)
//
// # Threading model
//
// Config.Threads is the single source of truth for parallelism: every
// decomposition entry point runs its parallel phases (slice compression, the
// ALS iteration kernels, fitness evaluation) on a compute worker pool of
// that width, created for the duration of the call. Long-running callers —
// servers decomposing many tensors, rank sweeps, streaming — should create
// one pool up front and share it:
//
//	pool := repro.NewPool(8) // 8 workers, reused across decompositions
//	defer pool.Close()
//	cfg := repro.DefaultConfig()
//	cfg.Pool = pool // overrides cfg.Threads
//
// A shared pool is safe for concurrent decompositions. The pool contributes
// at most its width in worker goroutines; each goroutine calling into the
// library also participates in its own work, so N concurrent callers run on
// at most width-1 + N goroutines. Results are deterministic for a given
// Config regardless of Threads/pool width.
//
// The heavy lifting lives in internal packages (compute, mat, lapack, rsvd,
// tensor, cp, parafac2, scheduler, datagen, stats); this package re-exports
// the surface a downstream user needs.
package repro

import (
	"repro/internal/compute"
	"repro/internal/datagen"
	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Pool is the shared compute runtime: a long-lived worker pool plus
// size-bucketed scratch reuse that all decomposition phases run on. Set
// Config.Pool to share one across decompositions.
type Pool = compute.Pool

// NewPool returns a worker pool of width n. Close it when done; a nil *Pool
// means serial execution.
//
// Note the zero conventions differ: NewPool(n <= 0) means GOMAXPROCS (the
// natural default for a pool you build explicitly), while Config.Threads <= 0
// means serial. When deriving a pool width from a Config, clamp:
// NewPool(max(1, cfg.Threads)).
func NewPool(n int) *Pool { return compute.NewPool(n) }

// Matrix is a row-major dense matrix of float64.
type Matrix = mat.Dense

// Irregular is an irregular 3-order tensor: K dense slices with a shared
// column count and per-slice row counts.
type Irregular = tensor.Irregular

// Config carries the decomposition parameters (rank, iterations, tolerance,
// threads, randomized-SVD knobs).
type Config = parafac2.Config

// Result is the output of a PARAFAC2 decomposition: factors H, V, S_k, Q_k
// plus fitness, iteration count, and a timing/footprint breakdown.
type Result = parafac2.Result

// Compressed is the two-stage randomized-SVD compression of an irregular
// tensor that DPar2 iterates on.
type Compressed = parafac2.Compressed

// RNG is the deterministic random number generator used for initialization,
// sketches, and data generation.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// DefaultConfig mirrors the paper's experimental settings (rank 10, at most
// 32 ALS iterations, 6 threads, oversampling 8, one power iteration).
func DefaultConfig() Config { return parafac2.DefaultConfig() }

// NewIrregular wraps slices (which must share a column count) as an
// irregular tensor.
func NewIrregular(slices []*Matrix) (*Irregular, error) { return tensor.NewIrregular(slices) }

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.New(rows, cols) }

// NewMatrixFromData wraps row-major data as a matrix without copying.
func NewMatrixFromData(rows, cols int, data []float64) *Matrix {
	return mat.NewFromData(rows, cols, data)
}

// DPar2 decomposes an irregular dense tensor with the paper's method:
// two-stage randomized-SVD compression followed by ALS iterations whose
// per-iteration cost O(JR² + KR³) is independent of the slice heights.
func DPar2(t *Irregular, cfg Config) (*Result, error) { return parafac2.DPar2(t, cfg) }

// Compress runs only the two-stage compression (lines 2-6 of Algorithm 3),
// for callers that amortize preprocessing across several decompositions.
func Compress(t *Irregular, cfg Config) *Compressed { return parafac2.Compress(t, cfg) }

// DPar2FromCompressed runs DPar2's iteration phase on a previously
// compressed tensor. Result.Fitness is not populated (the input tensor is
// not available); use Fitness.
func DPar2FromCompressed(c *Compressed, cfg Config) (*Result, error) {
	return parafac2.DPar2FromCompressed(c, cfg)
}

// ALS is the classical PARAFAC2-ALS baseline (Algorithm 2; Kiers et al.
// 1999): every iteration recomputes against the full input tensor.
func ALS(t *Irregular, cfg Config) (*Result, error) { return parafac2.ALS(t, cfg) }

// RDALS is the RD-ALS baseline (Cheng & Haardt 2019): deterministic
// dimensionality reduction once, ALS on the reduced slices, full
// reconstruction error for convergence.
func RDALS(t *Irregular, cfg Config) (*Result, error) { return parafac2.RDALS(t, cfg) }

// SPARTan is a SPARTan-style baseline (Perros et al. 2017) adapted to dense
// data: slice-parallel PARAFAC2-ALS with fused MTTKRP accumulation.
func SPARTan(t *Irregular, cfg Config) (*Result, error) { return parafac2.SPARTan(t, cfg) }

// Fitness evaluates 1 − Σ‖X_k−X̂_k‖²/Σ‖X_k‖² of a result against a tensor.
func Fitness(t *Irregular, r *Result) float64 { return parafac2.Fitness(t, r) }

// SliceResiduals returns ‖X_k − X̂_k‖/‖X_k‖ per slice — elevated residuals
// flag slices the shared factors cannot explain (fault detection, one of
// PARAFAC2's classical applications).
func SliceResiduals(t *Irregular, r *Result) []float64 { return parafac2.SliceResiduals(t, r) }

// Anomaly flags one slice singled out by residual analysis.
type Anomaly = parafac2.Anomaly

// DetectAnomalies ranks slices whose reconstruction residual deviates from
// the cohort by more than threshold robust z-scores (≈3.5 is conventional).
func DetectAnomalies(t *Irregular, r *Result, threshold float64) []Anomaly {
	return parafac2.DetectAnomalies(t, r, threshold)
}

// FactorMatchScore compares two factor matrices up to column permutation
// and sign via greedy Tucker-congruence matching (1 = identical components).
func FactorMatchScore(a, b *Matrix) float64 { return stats.FactorMatchScore(a, b) }

// StreamingDPar2 maintains a PARAFAC2 decomposition over a growing tensor:
// new slices are absorbed into the compressed representation without
// recompressing the old ones (the paper's named future-work setting).
type StreamingDPar2 = parafac2.StreamingDPar2

// NewStreamingDPar2 initializes a stream with a first batch of slices.
func NewStreamingDPar2(initial *Irregular, cfg Config) (*StreamingDPar2, error) {
	return parafac2.NewStreamingDPar2(initial, cfg)
}

// ----- Synthetic data generators (stand-ins for the paper's datasets) -----

// RandomTensor mirrors Tensor Toolbox's tenrand(I, J, K): K equal-height
// slices with uniform [0,1) entries — the scalability-study workload.
func RandomTensor(g *RNG, i, j, k int) *Irregular { return datagen.RandomIrregular(g, i, j, k) }

// LowRankTensor builds an irregular tensor with exact PARAFAC2 structure of
// the given rank plus relative Gaussian noise.
func LowRankTensor(g *RNG, rows []int, j, rank int, noise float64) *Irregular {
	return datagen.LowRank(g, rows, j, rank, noise)
}

// StockMarket parameterizes the market simulator.
type StockMarket = datagen.StockMarket

// USMarket / KRMarket mirror the two stock datasets of the paper: a
// developed market where volume tracks price moves, and a higher-volatility
// market where it does not (the Fig. 12 contrast).
func USMarket() StockMarket { return datagen.DefaultUSMarket() }
func KRMarket() StockMarket { return datagen.DefaultKRMarket() }

// NewStockTensor simulates a market of k stocks with listing periods in
// [minDays, maxDays] drawn long-tailed (Fig. 8), each a (days × 88)
// feature matrix. It also returns each stock's sector id.
func NewStockTensor(g *RNG, k, minDays, maxDays int, m StockMarket) (*Irregular, []int) {
	return datagen.StockTensor(g, k, minDays, maxDays, m)
}

// StockFeatureNames returns the 88 feature-column labels of stock tensors.
func StockFeatureNames() []string { return datagen.StockFeatureNames() }

// NewSpectrogramTensor simulates k songs/sounds as log-power spectrograms
// (time × freqBins), the FMA/Urban stand-in.
func NewSpectrogramTensor(g *RNG, k, minFrames, maxFrames, freqBins int) *Irregular {
	return datagen.SpectrogramTensor(g, k, minFrames, maxFrames, freqBins)
}

// NewVideoFeatureTensor simulates k videos as (frame × feature) matrices,
// the Activity/Action stand-in.
func NewVideoFeatureTensor(g *RNG, k, minFrames, maxFrames, features, classes int) *Irregular {
	return datagen.VideoFeatureTensor(g, k, minFrames, maxFrames, features, classes)
}

// NewTrafficTensor simulates k days of (sensor × time-of-day) volumes, the
// Traffic/PEMS-SF stand-in.
func NewTrafficTensor(g *RNG, k, sensors, timestamps int) *Irregular {
	return datagen.TrafficTensor(g, k, sensors, timestamps)
}

// ----- Discovery analytics (Section IV-E) -----

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(x, y []float64) float64 { return stats.Pearson(x, y) }

// CorrelationMatrix returns pairwise Pearson correlations between the rows
// of m (Fig. 12: rows of V are per-feature latent vectors).
func CorrelationMatrix(m *Matrix) *Matrix { return stats.CorrelationMatrix(m) }

// StockSimilarity is Equation (10): exp(−γ‖U_i − U_j‖_F²).
func StockSimilarity(ui, uj *Matrix, gamma float64) float64 {
	return stats.ExpSimilarity(ui, uj, gamma)
}

// Neighbor pairs an item index with a similarity/RWR score.
type Neighbor = stats.Neighbor

// KNN returns the k most similar items to query q under the similarity
// matrix (Table III(a)).
func KNN(sim *Matrix, q, k int) []Neighbor { return stats.KNN(sim, q, k) }

// RWRConfig configures Random Walk with Restart (restart prob 0.15, 100
// iterations in the paper).
type RWRConfig = stats.RWRConfig

// DefaultRWRConfig matches Section IV-E.
func DefaultRWRConfig() RWRConfig { return stats.DefaultRWRConfig() }

// RWR returns Random-Walk-with-Restart scores over the similarity graph adj
// from query q (Table III(b)).
func RWR(adj *Matrix, q int, cfg RWRConfig) []float64 { return stats.RWR(adj, q, cfg) }

// SimilarityGraph builds the Equation (11) adjacency: sim(i,j) off the
// diagonal, zeros on it.
func SimilarityGraph(n int, sim func(i, j int) float64) *Matrix {
	return stats.SimilarityGraph(n, sim)
}
